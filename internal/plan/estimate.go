package plan

import (
	"math"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/query"
)

// CardFunc estimates |R(q')| — the number of matches of the sub-query given
// by edge mask em — used by Algorithm 1 (line 4/6) to cost plans. The paper
// cites estimation methods [46, 51, 58]; we provide a degree-moment
// estimator (exact in the Chung–Lu random-graph model) and a plain
// Erdős–Rényi fallback.
type CardFunc func(q *query.Query, em uint32) float64

// GraphStats summarises a data graph for cardinality estimation.
type GraphStats struct {
	N       int
	M       uint64    // undirected edges
	Moments []float64 // Moments[k] = Σ_v d(v)^k, for k = 0..MaxVertices-1
	MaxDeg  int
	// Epoch is the snapshot version the statistics were computed for
	// (graph.Graph.Epoch()). It participates in Fingerprint, so two
	// statistically identical snapshots of different epochs never share
	// plan-cache entries — a plan optimised before an update can never be
	// served after it.
	Epoch uint64
	// LabelCounts[l] is the number of vertices carrying label l; nil for
	// unlabelled graphs. The optimiser multiplies a sub-query's estimate by
	// each constrained vertex's label selectivity, which is what makes
	// rare-label-first plans fall out of the dynamic program.
	LabelCounts []float64
}

// LabelShare returns the fraction of vertices carrying label l, treating an
// unlabelled graph as uniformly label-0. A label no vertex carries reports
// a half-vertex share rather than zero so costs stay finite and ordered.
func (s GraphStats) LabelShare(l int) float64 {
	if s.N == 0 {
		return 1
	}
	if s.LabelCounts == nil {
		if l == 0 {
			return 1
		}
		return 0.5 / float64(s.N)
	}
	cnt := 0.0
	if l >= 0 && l < len(s.LabelCounts) {
		cnt = s.LabelCounts[l]
	}
	return math.Max(cnt, 0.5) / float64(s.N)
}

// labelSelectivity is the product of label shares over the constrained
// vertices covered by edge mask em — the factor by which label constraints
// shrink a sub-query's match estimate under label/structure independence.
func labelSelectivity(s GraphStats, q *query.Query, em uint32) float64 {
	if !q.Labeled() {
		return 1
	}
	sel := 1.0
	vm := q.VerticesOfEdgeMask(em)
	for vm != 0 {
		v := bits.TrailingZeros32(vm)
		vm &= vm - 1
		if l := q.Label(v); l >= 0 {
			sel *= s.LabelShare(l)
		}
	}
	return sel
}

// Fingerprint returns a version hash of the statistics: plan-cache keys
// include it so that plans optimised against stale statistics (a different
// graph, or a re-computed summary after updates) are never reused.
func (s GraphStats) Fingerprint() uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(s.N))
	mix(s.M)
	mix(uint64(s.MaxDeg))
	mix(s.Epoch)
	for _, m := range s.Moments {
		mix(math.Float64bits(m))
	}
	// Label frequencies participate only when present, so an unlabelled
	// graph's fingerprint is unchanged from the label-free format and a
	// labelled twin never shares plan-cache entries with its base graph.
	for _, c := range s.LabelCounts {
		mix(math.Float64bits(c))
	}
	return h
}

// ComputeStats scans the graph once and collects degree moments.
func ComputeStats(g *graph.Graph) GraphStats {
	s := GraphStats{
		N:       g.NumVertices(),
		M:       g.NumEdges(),
		Moments: make([]float64, query.MaxVertices),
		MaxDeg:  g.MaxDegree(),
		Epoch:   g.Epoch(),
	}
	for v := 0; v < g.NumVertices(); v++ {
		d := float64(g.Degree(graph.VertexID(v)))
		p := 1.0
		for k := 0; k < len(s.Moments); k++ {
			s.Moments[k] += p
			p *= d
		}
	}
	if g.Labeled() {
		s.LabelCounts = make([]float64, g.NumLabels())
		for l := range s.LabelCounts {
			s.LabelCounts[l] = float64(g.LabelCount(graph.LabelID(l)))
		}
	}
	return s
}

// UpdateStats derives the statistics of the snapshot newG from the previous
// snapshot's statistics without rescanning the graph: only the vertices
// whose adjacency changed (touched, from graph.Applied.Touched) have their
// degree-moment contributions swapped; N, M, MaxDeg and Epoch are O(1)
// reads off newG; label frequencies are re-read from the per-label index
// (numLabels entries, not a vertex scan). With exact integer-valued moments
// it matches ComputeStats(newG) bit for bit.
func UpdateStats(s GraphStats, oldG, newG *graph.Graph, touched []graph.VertexID) GraphStats {
	ns := GraphStats{
		N:       newG.NumVertices(),
		M:       newG.NumEdges(),
		Moments: append([]float64(nil), s.Moments...),
		MaxDeg:  newG.MaxDegree(),
		Epoch:   newG.Epoch(),
	}
	// Moments[0] = N always (every vertex contributes d^0 = 1): covers gap
	// vertices created by a growing delta without touching the loop below.
	ns.Moments[0] = float64(ns.N)
	oldN := oldG.NumVertices()
	for _, v := range touched {
		var oldD float64
		if int(v) < oldN {
			oldD = float64(oldG.Degree(v))
		}
		newD := float64(newG.Degree(v))
		po, pn := oldD, newD
		for k := 1; k < len(ns.Moments); k++ {
			if int(v) < oldN {
				ns.Moments[k] -= po
			}
			ns.Moments[k] += pn
			po *= oldD
			pn *= newD
		}
	}
	if newG.Labeled() {
		ns.LabelCounts = make([]float64, newG.NumLabels())
		for l := range ns.LabelCounts {
			ns.LabelCounts[l] = float64(newG.LabelCount(graph.LabelID(l)))
		}
	}
	return ns
}

// MomentEstimator returns a CardFunc based on degree moments: in the
// Chung–Lu model with the graph's empirical degrees as weights, the expected
// number of homomorphisms of a pattern H is
//
//	Π_{v ∈ V_H} m_{deg_H(v)} / m_1^{|E_H|},   m_k = Σ_i d_i^k.
//
// This captures degree skew — the dominant effect in the paper's datasets —
// and reduces to the Erdős–Rényi estimate on regular graphs. Each
// label-constrained vertex covered by em further multiplies the estimate by
// its label's frequency share (independence of labels and structure), so
// sub-queries anchored on rare labels cost orders of magnitude less and the
// optimiser starts plans from them.
func MomentEstimator(stats GraphStats) CardFunc {
	return func(q *query.Query, em uint32) float64 {
		if em == 0 {
			return 1
		}
		deg := make([]int, q.NumVertices())
		edges := 0
		m := em
		for m != 0 {
			i := bits.TrailingZeros32(m)
			m &= m - 1
			e := q.Edges()[i]
			deg[e[0]]++
			deg[e[1]]++
			edges++
		}
		logEst := 0.0
		for _, d := range deg {
			if d > 0 {
				logEst += math.Log(math.Max(stats.Moments[d], 1))
			}
		}
		logEst -= float64(edges) * math.Log(math.Max(stats.Moments[1], 2))
		est := math.Exp(logEst) * labelSelectivity(stats, q, em)
		if est < 1 {
			return 1
		}
		return est
	}
}

// ERRandomGraphEstimator returns a CardFunc using the Erdős–Rényi model:
// falling(n, v) * p^e with p = 2M / (N(N-1)). Used as a baseline estimator
// and by tests.
func ERRandomGraphEstimator(stats GraphStats) CardFunc {
	return func(q *query.Query, em uint32) float64 {
		if em == 0 {
			return 1
		}
		vm := q.VerticesOfEdgeMask(em)
		v := bits.OnesCount32(vm)
		e := bits.OnesCount32(em)
		n := float64(stats.N)
		if n < 2 {
			return 1
		}
		p := 2 * float64(stats.M) / (n * (n - 1))
		logEst := 0.0
		for i := 0; i < v; i++ {
			logEst += math.Log(n - float64(i))
		}
		logEst += float64(e) * math.Log(math.Max(p, 1e-300))
		est := math.Exp(logEst) * labelSelectivity(stats, q, em)
		if est < 1 {
			return 1
		}
		return est
	}
}
