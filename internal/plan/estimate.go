package plan

import (
	"math"
	"math/bits"
	"slices"

	"repro/internal/graph"
	"repro/internal/query"
)

// CardFunc estimates |R(q')| — the number of matches of the sub-query given
// by edge mask em — used by Algorithm 1 (line 4/6) to cost plans. The paper
// cites estimation methods [46, 51, 58]; we provide a degree-moment
// estimator (exact in the Chung–Lu random-graph model) and a plain
// Erdős–Rényi fallback.
type CardFunc func(q *query.Query, em uint32) float64

// GraphStats summarises a data graph for cardinality estimation.
type GraphStats struct {
	N       int
	M       uint64    // undirected edges
	Moments []float64 // Moments[k] = Σ_v d(v)^k, for k = 0..MaxVertices-1
	MaxDeg  int
	// Epoch is the snapshot version the statistics were computed for
	// (graph.Graph.Epoch()). It participates in Fingerprint, so two
	// statistically identical snapshots of different epochs never share
	// plan-cache entries — a plan optimised before an update can never be
	// served after it.
	Epoch uint64
	// LabelCounts[l] is the number of vertices carrying label l; nil for
	// unlabelled graphs. The optimiser multiplies a sub-query's estimate by
	// each constrained vertex's label selectivity, which is what makes
	// rare-label-first plans fall out of the dynamic program.
	LabelCounts []float64
	// EdgeTriples counts undirected edges per (srcLabel, edgeLabel,
	// dstLabel) triple, keyed by EdgeTripleKey (endpoint labels
	// canonicalised min-first); nil for edge-unlabelled graphs. The
	// estimators multiply each edge-label-constrained query edge's
	// selectivity in, which makes rare-edge-first plans fall out of the
	// dynamic program exactly as rare vertex labels do.
	EdgeTriples map[uint64]float64
}

// EdgeTripleKey packs a (srcLabel, edgeLabel, dstLabel) triple into the
// canonical EdgeTriples key (endpoint labels ordered min-first, since
// edges are undirected).
func EdgeTripleKey(src graph.LabelID, el graph.LabelID, dst graph.LabelID) uint64 {
	if src > dst {
		src, dst = dst, src
	}
	return uint64(src)<<32 | uint64(el)<<16 | uint64(dst)
}

// EdgeLabelShare returns the fraction of edges carrying edge label el,
// treating an edge-unlabelled graph as uniformly label-0. A label no edge
// carries reports a half-edge share so costs stay finite and ordered.
func (s GraphStats) EdgeLabelShare(el int) float64 {
	if s.M == 0 {
		return 1
	}
	if s.EdgeTriples == nil {
		if el == 0 {
			return 1
		}
		return 0.5 / float64(s.M)
	}
	cnt := 0.0
	for k, c := range s.EdgeTriples {
		if int(k>>16&0xFFFF) == el {
			cnt += c
		}
	}
	return math.Max(cnt, 0.5) / float64(s.M)
}

// LabelShare returns the fraction of vertices carrying label l, treating an
// unlabelled graph as uniformly label-0. A label no vertex carries reports
// a half-vertex share rather than zero so costs stay finite and ordered.
func (s GraphStats) LabelShare(l int) float64 {
	if s.N == 0 {
		return 1
	}
	if s.LabelCounts == nil {
		if l == 0 {
			return 1
		}
		return 0.5 / float64(s.N)
	}
	cnt := 0.0
	if l >= 0 && l < len(s.LabelCounts) {
		cnt = s.LabelCounts[l]
	}
	return math.Max(cnt, 0.5) / float64(s.N)
}

// labelSelectivity is the product of label shares over the constrained
// vertices covered by edge mask em — the factor by which label constraints
// shrink a sub-query's match estimate under label/structure independence.
func labelSelectivity(s GraphStats, q *query.Query, em uint32) float64 {
	if !q.Labeled() {
		return 1
	}
	sel := 1.0
	vm := q.VerticesOfEdgeMask(em)
	for vm != 0 {
		v := bits.TrailingZeros32(vm)
		vm &= vm - 1
		if l := q.Label(v); l >= 0 {
			sel *= s.LabelShare(l)
		}
	}
	return sel
}

// edgeSelectivity precomputes marginal edge-label counts and per-endpoint-
// label-pair counts from EdgeTriples, so the per-(q, em) factor inside the
// optimiser's cardinality calls costs O(query edges), not a map scan.
type edgeSelectivity struct {
	stats    GraphStats
	marginal map[int]float64    // edge label → edge count
	pairs    map[uint64]float64 // (minVL, maxVL) → edge count, any edge label
}

func newEdgeSelectivity(stats GraphStats) *edgeSelectivity {
	es := &edgeSelectivity{stats: stats}
	if stats.EdgeTriples == nil {
		return es
	}
	es.marginal = map[int]float64{}
	es.pairs = map[uint64]float64{}
	for k, c := range stats.EdgeTriples {
		es.marginal[int(k>>16&0xFFFF)] += c
		es.pairs[k>>32<<16|k&0xFFFF] += c
	}
	return es
}

// factor is the multiplicative edge-label selectivity of the query edges
// covered by em. A constrained edge whose endpoints are both
// vertex-labelled multiplies the conditional share
// triple(la, el, lb) / pairCount(la, lb) — the endpoint-label factor is
// already priced in by labelSelectivity — while partially-constrained
// edges fall back to the marginal share of the edge label. 1 for
// edge-unlabelled queries: estimators stay bit-identical without
// edge-label constraints.
func (es *edgeSelectivity) factor(q *query.Query, em uint32) float64 {
	if !q.EdgeLabeled() || es.stats.M == 0 {
		return 1
	}
	sel := 1.0
	halfEdge := 0.5 / float64(es.stats.M)
	m := em
	for m != 0 {
		i := bits.TrailingZeros32(m)
		m &= m - 1
		el := q.EdgeLabelAt(i)
		if el < 0 {
			continue
		}
		if es.stats.EdgeTriples == nil {
			// Edge-unlabelled graph: every edge implicitly carries label 0.
			if el != 0 {
				sel *= halfEdge
			}
			continue
		}
		e := q.Edges()[i]
		la, lb := q.Label(e[0]), q.Label(e[1])
		if la >= 0 && lb >= 0 {
			mn, mx := la, lb
			if mn > mx {
				mn, mx = mx, mn
			}
			if pair := es.pairs[uint64(mn)<<16|uint64(mx)]; pair > 0 {
				cnt := es.stats.EdgeTriples[EdgeTripleKey(graph.LabelID(la), graph.LabelID(el), graph.LabelID(lb))]
				sel *= math.Max(cnt, 0.5) / pair
				continue
			}
			sel *= halfEdge
			continue
		}
		sel *= math.Max(es.marginal[el], 0.5) / float64(es.stats.M)
	}
	return sel
}

// Fingerprint returns a version hash of the statistics: plan-cache keys
// include it so that plans optimised against stale statistics (a different
// graph, or a re-computed summary after updates) are never reused.
func (s GraphStats) Fingerprint() uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(s.N))
	mix(s.M)
	mix(uint64(s.MaxDeg))
	mix(s.Epoch)
	for _, m := range s.Moments {
		mix(math.Float64bits(m))
	}
	// Label frequencies participate only when present, so an unlabelled
	// graph's fingerprint is unchanged from the label-free format and a
	// labelled twin never shares plan-cache entries with its base graph.
	for _, c := range s.LabelCounts {
		mix(math.Float64bits(c))
	}
	// Edge-label triples likewise — mixed in sorted key order so the map's
	// iteration order can never leak into the fingerprint.
	if s.EdgeTriples != nil {
		keys := make([]uint64, 0, len(s.EdgeTriples))
		for k := range s.EdgeTriples {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		for _, k := range keys {
			mix(k)
			mix(math.Float64bits(s.EdgeTriples[k]))
		}
	}
	return h
}

// ComputeStats scans the graph once and collects degree moments.
func ComputeStats(g *graph.Graph) GraphStats {
	s := GraphStats{
		N:       g.NumVertices(),
		M:       g.NumEdges(),
		Moments: make([]float64, query.MaxVertices),
		MaxDeg:  g.MaxDegree(),
		Epoch:   g.Epoch(),
	}
	for v := 0; v < g.NumVertices(); v++ {
		d := float64(g.Degree(graph.VertexID(v)))
		p := 1.0
		for k := 0; k < len(s.Moments); k++ {
			s.Moments[k] += p
			p *= d
		}
	}
	if g.Labeled() {
		s.LabelCounts = make([]float64, g.NumLabels())
		for l := range s.LabelCounts {
			s.LabelCounts[l] = float64(g.LabelCount(graph.LabelID(l)))
		}
	}
	s.EdgeTriples = computeEdgeTriples(g)
	return s
}

// computeEdgeTriples counts each undirected edge once under its
// (srcLabel, edgeLabel, dstLabel) triple; nil for edge-unlabelled graphs.
func computeEdgeTriples(g *graph.Graph) map[uint64]float64 {
	if !g.EdgeLabeled() {
		return nil
	}
	triples := map[uint64]float64{}
	for v := 0; v < g.NumVertices(); v++ {
		nb := g.Neighbors(graph.VertexID(v))
		lb := g.NeighborEdgeLabels(graph.VertexID(v))
		for i, w := range nb {
			if graph.VertexID(v) < w {
				triples[EdgeTripleKey(g.Label(graph.VertexID(v)), lb[i], g.Label(w))]++
			}
		}
	}
	return triples
}

// UpdateStats derives the statistics of the snapshot newG from the previous
// snapshot's statistics without rescanning the graph: only the vertices
// whose adjacency changed (applied.Touched) have their degree-moment
// contributions swapped; N, M, MaxDeg and Epoch are O(1) reads off newG;
// label frequencies are re-read from the per-label index (numLabels
// entries, not a vertex scan); edge-label triples are patched from the
// effective inserted/deleted edge sets and the relabelled vertices — work
// proportional to the delta. With exact integer-valued moments and counts
// it matches ComputeStats(newG) bit for bit.
func UpdateStats(s GraphStats, oldG, newG *graph.Graph, applied graph.Applied) GraphStats {
	ns := GraphStats{
		N:       newG.NumVertices(),
		M:       newG.NumEdges(),
		Moments: append([]float64(nil), s.Moments...),
		MaxDeg:  newG.MaxDegree(),
		Epoch:   newG.Epoch(),
	}
	// Moments[0] = N always (every vertex contributes d^0 = 1): covers gap
	// vertices created by a growing delta without touching the loop below.
	ns.Moments[0] = float64(ns.N)
	oldN := oldG.NumVertices()
	for _, v := range applied.Touched {
		var oldD float64
		if int(v) < oldN {
			oldD = float64(oldG.Degree(v))
		}
		newD := float64(newG.Degree(v))
		po, pn := oldD, newD
		for k := 1; k < len(ns.Moments); k++ {
			if int(v) < oldN {
				ns.Moments[k] -= po
			}
			ns.Moments[k] += pn
			po *= oldD
			pn *= newD
		}
	}
	if newG.Labeled() {
		ns.LabelCounts = make([]float64, newG.NumLabels())
		for l := range ns.LabelCounts {
			ns.LabelCounts[l] = float64(newG.LabelCount(graph.LabelID(l)))
		}
	}
	ns.EdgeTriples = updateEdgeTriples(s, oldG, newG, applied)
	return ns
}

// updateEdgeTriples patches the previous snapshot's triple counts: deleted
// edges are subtracted under the old snapshot's labels, inserted edges
// added under the new snapshot's (an edge relabel, being
// delete-and-reinsert churn, moves between triples automatically), and
// edges incident to relabelled vertices move from their old endpoint-label
// triple to the new one. Counts are integers, so zero entries vanish
// exactly and the result is bit-identical to computeEdgeTriples(newG).
func updateEdgeTriples(s GraphStats, oldG, newG *graph.Graph, applied graph.Applied) map[uint64]float64 {
	if !newG.EdgeLabeled() {
		return nil
	}
	if !oldG.EdgeLabeled() {
		// The delta introduced edge labels: there is no triple base to
		// patch. This transition compacts the whole CSR anyway, so a full
		// recount costs nothing extra asymptotically.
		return computeEdgeTriples(newG)
	}
	nt := make(map[uint64]float64, len(s.EdgeTriples))
	for k, c := range s.EdgeTriples {
		nt[k] = c
	}
	bump := func(k uint64, d float64) {
		if c := nt[k] + d; c > 0 {
			nt[k] = c
		} else {
			delete(nt, k)
		}
	}
	for _, e := range applied.Deleted.Edges() {
		bump(EdgeTripleKey(oldG.Label(e[0]), oldG.EdgeLabel(e[0], e[1]), oldG.Label(e[1])), -1)
	}
	for _, e := range applied.Inserted.Edges() {
		bump(EdgeTripleKey(newG.Label(e[0]), newG.EdgeLabel(e[0], e[1]), newG.Label(e[1])), +1)
	}
	// Surviving edges incident to a relabelled vertex change endpoint
	// labels without changing the edge label. Deleted edges were already
	// subtracted (under old labels) and inserted ones added (under new),
	// so only edges in neither set move; the seen set keeps an edge
	// between two relabelled vertices from moving twice.
	seen := map[[2]graph.VertexID]struct{}{}
	for _, v := range applied.Relabeled {
		if int(v) >= oldG.NumVertices() {
			continue
		}
		for _, w := range oldG.Neighbors(v) {
			a, b := v, w
			if a > b {
				a, b = b, a
			}
			if _, dup := seen[[2]graph.VertexID{a, b}]; dup {
				continue
			}
			seen[[2]graph.VertexID{a, b}] = struct{}{}
			if applied.Deleted.Has(v, w) {
				continue
			}
			el := oldG.EdgeLabel(v, w)
			bump(EdgeTripleKey(oldG.Label(a), el, oldG.Label(b)), -1)
			bump(EdgeTripleKey(newG.Label(a), el, newG.Label(b)), +1)
		}
	}
	return nt
}

// MomentEstimator returns a CardFunc based on degree moments: in the
// Chung–Lu model with the graph's empirical degrees as weights, the expected
// number of homomorphisms of a pattern H is
//
//	Π_{v ∈ V_H} m_{deg_H(v)} / m_1^{|E_H|},   m_k = Σ_i d_i^k.
//
// This captures degree skew — the dominant effect in the paper's datasets —
// and reduces to the Erdős–Rényi estimate on regular graphs. Each
// label-constrained vertex covered by em further multiplies the estimate by
// its label's frequency share (independence of labels and structure), so
// sub-queries anchored on rare labels cost orders of magnitude less and the
// optimiser starts plans from them; each edge-label-constrained query edge
// multiplies its triple-conditional share in the same way, yielding
// rare-edge-first plans.
func MomentEstimator(stats GraphStats) CardFunc {
	es := newEdgeSelectivity(stats)
	return func(q *query.Query, em uint32) float64 {
		if em == 0 {
			return 1
		}
		deg := make([]int, q.NumVertices())
		edges := 0
		m := em
		for m != 0 {
			i := bits.TrailingZeros32(m)
			m &= m - 1
			e := q.Edges()[i]
			deg[e[0]]++
			deg[e[1]]++
			edges++
		}
		logEst := 0.0
		for _, d := range deg {
			if d > 0 {
				logEst += math.Log(math.Max(stats.Moments[d], 1))
			}
		}
		logEst -= float64(edges) * math.Log(math.Max(stats.Moments[1], 2))
		est := math.Exp(logEst) * labelSelectivity(stats, q, em) * es.factor(q, em)
		if est < 1 {
			return 1
		}
		return est
	}
}

// ERRandomGraphEstimator returns a CardFunc using the Erdős–Rényi model:
// falling(n, v) * p^e with p = 2M / (N(N-1)). Used as a baseline estimator
// and by tests.
func ERRandomGraphEstimator(stats GraphStats) CardFunc {
	es := newEdgeSelectivity(stats)
	return func(q *query.Query, em uint32) float64 {
		if em == 0 {
			return 1
		}
		vm := q.VerticesOfEdgeMask(em)
		v := bits.OnesCount32(vm)
		e := bits.OnesCount32(em)
		n := float64(stats.N)
		if n < 2 {
			return 1
		}
		p := 2 * float64(stats.M) / (n * (n - 1))
		logEst := 0.0
		for i := 0; i < v; i++ {
			logEst += math.Log(n - float64(i))
		}
		logEst += float64(e) * math.Log(math.Max(p, 1e-300))
		est := math.Exp(logEst) * labelSelectivity(stats, q, em) * es.factor(q, em)
		if est < 1 {
			return 1
		}
		return est
	}
}
