package plan

import (
	"math"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/query"
)

// CardFunc estimates |R(q')| — the number of matches of the sub-query given
// by edge mask em — used by Algorithm 1 (line 4/6) to cost plans. The paper
// cites estimation methods [46, 51, 58]; we provide a degree-moment
// estimator (exact in the Chung–Lu random-graph model) and a plain
// Erdős–Rényi fallback.
type CardFunc func(q *query.Query, em uint32) float64

// GraphStats summarises a data graph for cardinality estimation.
type GraphStats struct {
	N       int
	M       uint64    // undirected edges
	Moments []float64 // Moments[k] = Σ_v d(v)^k, for k = 0..MaxVertices-1
	MaxDeg  int
}

// Fingerprint returns a version hash of the statistics: plan-cache keys
// include it so that plans optimised against stale statistics (a different
// graph, or a re-computed summary after updates) are never reused.
func (s GraphStats) Fingerprint() uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(s.N))
	mix(s.M)
	mix(uint64(s.MaxDeg))
	for _, m := range s.Moments {
		mix(math.Float64bits(m))
	}
	return h
}

// ComputeStats scans the graph once and collects degree moments.
func ComputeStats(g *graph.Graph) GraphStats {
	s := GraphStats{
		N:       g.NumVertices(),
		M:       g.NumEdges(),
		Moments: make([]float64, query.MaxVertices),
		MaxDeg:  g.MaxDegree(),
	}
	for v := 0; v < g.NumVertices(); v++ {
		d := float64(g.Degree(graph.VertexID(v)))
		p := 1.0
		for k := 0; k < len(s.Moments); k++ {
			s.Moments[k] += p
			p *= d
		}
	}
	return s
}

// MomentEstimator returns a CardFunc based on degree moments: in the
// Chung–Lu model with the graph's empirical degrees as weights, the expected
// number of homomorphisms of a pattern H is
//
//	Π_{v ∈ V_H} m_{deg_H(v)} / m_1^{|E_H|},   m_k = Σ_i d_i^k.
//
// This captures degree skew — the dominant effect in the paper's datasets —
// and reduces to the Erdős–Rényi estimate on regular graphs.
func MomentEstimator(stats GraphStats) CardFunc {
	return func(q *query.Query, em uint32) float64 {
		if em == 0 {
			return 1
		}
		deg := make([]int, q.NumVertices())
		edges := 0
		m := em
		for m != 0 {
			i := bits.TrailingZeros32(m)
			m &= m - 1
			e := q.Edges()[i]
			deg[e[0]]++
			deg[e[1]]++
			edges++
		}
		logEst := 0.0
		for _, d := range deg {
			if d > 0 {
				logEst += math.Log(math.Max(stats.Moments[d], 1))
			}
		}
		logEst -= float64(edges) * math.Log(math.Max(stats.Moments[1], 2))
		est := math.Exp(logEst)
		if est < 1 {
			return 1
		}
		return est
	}
}

// ERRandomGraphEstimator returns a CardFunc using the Erdős–Rényi model:
// falling(n, v) * p^e with p = 2M / (N(N-1)). Used as a baseline estimator
// and by tests.
func ERRandomGraphEstimator(stats GraphStats) CardFunc {
	return func(q *query.Query, em uint32) float64 {
		if em == 0 {
			return 1
		}
		vm := q.VerticesOfEdgeMask(em)
		v := bits.OnesCount32(vm)
		e := bits.OnesCount32(em)
		n := float64(stats.N)
		if n < 2 {
			return 1
		}
		p := 2 * float64(stats.M) / (n * (n - 1))
		logEst := 0.0
		for i := 0; i < v; i++ {
			logEst += math.Log(n - float64(i))
		}
		logEst += float64(e) * math.Log(math.Max(p, 1e-300))
		est := math.Exp(logEst)
		if est < 1 {
			return 1
		}
		return est
	}
}
