package baseline

import (
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/query"
)

// BiGJoinConfig parameterises the BiGJoin baseline (Ammar et al. [5]):
// worst-case-optimal join scheduled strictly BFS, with pushing
// communication — every extension routes the prefix (and the running
// candidate set) to the machines owning the vertices being intersected.
type BiGJoinConfig struct {
	NumMachines int
	// BatchPivots is the static batching heuristic: at most this many
	// initial edges enter the dataflow per round (0 = everything at once).
	BatchPivots int
	// MemLimitTuples simulates machine memory: exceeding it returns ErrOOM.
	MemLimitTuples int64
	// Comm models the network cost of the routed prefixes and candidate
	// sets.
	Comm CommCost
}

// RunBiGJoin enumerates q on g, returning the count. Communication and
// peak-memory metrics land in m, reproducing the paper's observation that
// pushing wco joins transfer d_G·|R| data and materialise whole levels.
func RunBiGJoin(g *graph.Graph, q *query.Query, cfg BiGJoinConfig, m *metrics.Metrics) (uint64, error) {
	if cfg.NumMachines < 1 {
		cfg.NumMachines = 1
	}
	k := cfg.NumMachines
	part := graph.NewPartitioner(k)
	order := plan.MatchingOrder(q)
	guard := &memGuard{m: m, limit: cfg.MemLimitTuples}

	// Initial edges: matches of (order[0], order[1]).
	v0, v1 := order[0], order[1]
	var initial []graph.VertexID // row-major pairs, owner = owner(u)
	for u := 0; u < g.NumVertices(); u++ {
		if !labelOK(g, q, v0, graph.VertexID(u)) {
			continue
		}
		for _, w := range g.Neighbors(graph.VertexID(u)) {
			if !labelOK(g, q, v1, w) {
				continue
			}
			row := []graph.VertexID{graph.VertexID(u), w}
			if !edgeLabelsOK(g, q, []int{v0}, row[:1], v1, w) {
				continue
			}
			if checkOrderWith(q, []int{v0}, row[:1], v1, w) && checkOrderWith(q, nil, nil, v0, graph.VertexID(u)) {
				initial = append(initial, graph.VertexID(u), w)
			}
		}
	}
	batch := cfg.BatchPivots
	if batch <= 0 {
		batch = len(initial)/2 + 1
	}

	var total uint64
	for lo := 0; lo < len(initial); lo += batch * 2 {
		hi := lo + batch*2
		if hi > len(initial) {
			hi = len(initial)
		}
		cur := newRel(k, []int{v0, v1})
		for i := lo; i < hi; i += 2 {
			dest := part.Owner(initial[i])
			cur.rows[dest] = append(cur.rows[dest], initial[i], initial[i+1])
		}
		if err := guard.add(int64(hi-lo) / 2); err != nil {
			return 0, err
		}
		n, err := bigjoinExpand(g, q, part, order, cur, guard, m, cfg.Comm)
		if err != nil {
			return 0, err
		}
		total += n
	}
	m.Results.Add(total)
	return total, nil
}

// bigjoinExpand runs the BFS rounds for one pivot batch.
func bigjoinExpand(g *graph.Graph, q *query.Query, part graph.Partitioner, order []int,
	cur *rel, guard *memGuard, m *metrics.Metrics, comm CommCost) (uint64, error) {
	k := part.NumMachines()
	matched := append([]int(nil), order[:2]...)
	for step := 2; step < len(order); step++ {
		target := order[step]
		var extQVs []int
		for _, u := range q.Adj(target) {
			for _, mv := range matched {
				if mv == u {
					extQVs = append(extQVs, u)
				}
			}
		}
		// task = prefix row plus the running candidate set; one sub-round
		// ("hop") per intersected vertex, each shuffling the tasks to the
		// owner of the vertex whose neighbours are needed.
		type task struct {
			row   []graph.VertexID
			cands []graph.VertexID
		}
		tasks := make([][]task, k)
		for mi, data := range cur.rows {
			for i := 0; i+cur.width <= len(data); i += cur.width {
				tasks[mi] = append(tasks[mi], task{row: data[i : i+cur.width]})
			}
		}
		for hop, qv := range extQVs {
			slot := cur.slotOf(qv)
			next := make([][]task, k)
			var pushed uint64
			for src := range tasks {
				for _, t := range tasks[src] {
					dest := part.Owner(t.row[slot])
					if dest != src {
						pushed += uint64(len(t.row))*4 + uint64(len(t.cands))*4
					}
					next[dest] = append(next[dest], t)
				}
			}
			if pushed > 0 {
				m.BytesPushed.Add(pushed)
				m.PushMsgs.Add(uint64(k))
				comm.charge(pushed, k, m)
			}
			// Intersect locally at the owner.
			for mi := range next {
				var buf []graph.VertexID
				for ti := range next[mi] {
					t := &next[mi][ti]
					nb := g.Neighbors(t.row[slot]) // owner-local access
					if hop == 0 {
						t.cands = nb
					} else {
						buf = graph.IntersectSorted(buf, t.cands, nb)
						t.cands = append([]graph.VertexID(nil), buf...)
					}
				}
			}
			tasks = next
		}
		// Materialise the next level.
		next := newRel(k, append(append([]int(nil), cur.layout...), target))
		var levelRows int64
		for mi := range tasks {
			for _, t := range tasks[mi] {
				for _, c := range t.cands {
					if containsVal(t.row, c) || !labelOK(g, q, target, c) {
						continue
					}
					if !edgeLabelsOK(g, q, cur.layout, t.row, target, c) {
						continue
					}
					if !checkOrderWith(q, cur.layout, t.row, target, c) {
						continue
					}
					next.rows[mi] = append(next.rows[mi], t.row...)
					next.rows[mi] = append(next.rows[mi], c)
					levelRows++
				}
			}
		}
		guard.m.AddLiveTuples(-cur.totalRows())
		if err := guard.add(levelRows); err != nil {
			return 0, err
		}
		cur = next
		matched = append(matched, target)
	}
	n := uint64(cur.totalRows())
	guard.m.AddLiveTuples(-cur.totalRows())
	return n, nil
}
