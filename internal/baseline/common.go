package baseline

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/query"
)

// CommCost models the network cost of pushed (shuffled) data for the
// baseline executors, mirroring the cluster.LatencyModel the HUGE engine
// pays for its RPCs: a per-message overhead plus a per-kilobyte wire cost.
type CommCost struct {
	PerMessage time.Duration
	PerKB      time.Duration
}

// charge sleeps for the modelled cost of msgs messages carrying bytes and
// records the blocked time.
func (c CommCost) charge(bytes uint64, msgs int, m *metrics.Metrics) {
	d := time.Duration(msgs)*c.PerMessage + time.Duration(bytes/1024)*c.PerKB
	if d <= 0 {
		return
	}
	start := time.Now()
	time.Sleep(d)
	m.CommTimeNs.Add(int64(time.Since(start)))
}

// ErrOOM simulates an out-of-memory failure: the paper's baselines
// materialise unbounded intermediate results and are reported as OOM when a
// machine exceeds its memory; our executors fail the same way when the live
// intermediate tuple count exceeds the configured limit.
var ErrOOM = errors.New("baseline: out of memory (intermediate results exceeded the limit)")

// rel is a distributed relation: rows per machine, row-major.
type rel struct {
	width  int
	layout []int // query vertex per slot
	rows   [][]graph.VertexID
}

func newRel(k int, layout []int) *rel {
	return &rel{width: len(layout), layout: append([]int(nil), layout...), rows: make([][]graph.VertexID, k)}
}

func (r *rel) totalRows() int64 {
	var n int64
	for _, m := range r.rows {
		n += int64(len(m)) / int64(r.width)
	}
	return n
}

func (r *rel) slotOf(qv int) int {
	for i, v := range r.layout {
		if v == qv {
			return i
		}
	}
	panic(fmt.Sprintf("baseline: vertex v%d not in layout %v", qv+1, r.layout))
}

// checkOrderWith reports whether candidate c, matched to query vertex v,
// satisfies q's symmetry-breaking orders against the already-matched
// prefix (layout gives the query vertex of each row slot).
func checkOrderWith(q *query.Query, layout []int, row []graph.VertexID, v int, c graph.VertexID) bool {
	for _, o := range q.Orders() {
		if o.A == v {
			for s, qv := range layout {
				if qv == o.B && c >= row[s] {
					return false
				}
			}
		}
		if o.B == v {
			for s, qv := range layout {
				if qv == o.A && row[s] >= c {
					return false
				}
			}
		}
	}
	return true
}

// labelOK reports whether data vertex c may be matched to query vertex v
// under q's label constraints. An unlabelled data graph behaves as
// uniformly label-0, mirroring the engine's semantics, so every executor
// and the oracle agree on labelled queries over any graph.
func labelOK(g *graph.Graph, q *query.Query, v int, c graph.VertexID) bool {
	l := q.Label(v)
	return l < 0 || int(g.Label(c)) == l
}

// edgeLabelsOK reports whether matching candidate c to query vertex v
// keeps every closed edge's label constraint satisfied: for each matched
// slot s (layout gives the query vertex of each row slot) adjacent to v in
// the query, the data edge (row[s], c) must carry the constrained label.
// An edge-unlabelled data graph behaves as uniformly edge-label-0,
// mirroring the engine's semantics.
func edgeLabelsOK(g *graph.Graph, q *query.Query, layout []int, row []graph.VertexID, v int, c graph.VertexID) bool {
	if !q.EdgeLabeled() {
		return true
	}
	for s, qv := range layout {
		if !q.HasEdge(qv, v) {
			continue
		}
		l := q.EdgeLabelBetween(qv, v)
		if l < 0 {
			continue
		}
		if int(g.EdgeLabel(row[s], c)) != l {
			return false
		}
	}
	return true
}

// edgeLabelsOKAssign is edgeLabelsOK for the backtracking executors that
// index partial matches by query vertex (assign) with a matching-order
// position array: the matched neighbours of v are those with pos[u] <
// depth.
func edgeLabelsOKAssign(g *graph.Graph, q *query.Query, v int, c graph.VertexID, assign []graph.VertexID, pos []int, depth int) bool {
	if !q.EdgeLabeled() {
		return true
	}
	for _, u := range q.Adj(v) {
		if pos[u] >= depth {
			continue
		}
		l := q.EdgeLabelBetween(u, v)
		if l < 0 {
			continue
		}
		if int(g.EdgeLabel(assign[u], c)) != l {
			return false
		}
	}
	return true
}

func containsVal(row []graph.VertexID, c graph.VertexID) bool {
	for _, u := range row {
		if u == c {
			return true
		}
	}
	return false
}

// shuffle routes every row of r to hash(key)%k, charging pushed bytes (and
// the modelled network cost) for rows that change machines.
func shuffle(r *rel, keySlots []int, k int, m *metrics.Metrics, cost CommCost) *rel {
	out := newRel(k, r.layout)
	var pushed uint64
	for src, data := range r.rows {
		for i := 0; i+r.width <= len(data); i += r.width {
			row := data[i : i+r.width]
			h := uint64(1469598103934665603)
			for _, ks := range keySlots {
				h = (h ^ uint64(row[ks])) * 1099511628211
			}
			dest := int(h % uint64(k))
			out.rows[dest] = append(out.rows[dest], row...)
			if dest != src {
				pushed += uint64(r.width) * 4
			}
		}
	}
	if pushed > 0 {
		m.PushMsgs.Add(uint64(k))
		m.BytesPushed.Add(pushed)
		cost.charge(pushed, k, m)
	}
	return out
}

// memGuard tracks materialised tuples against a limit.
type memGuard struct {
	m     *metrics.Metrics
	limit int64
}

// add records n newly-materialised tuples; it returns ErrOOM when the live
// total exceeds the limit (limit <= 0 disables the check).
func (g *memGuard) add(n int64) error {
	g.m.AddLiveTuples(n)
	if g.limit > 0 && g.m.LiveTuples() > g.limit {
		return ErrOOM
	}
	return nil
}
