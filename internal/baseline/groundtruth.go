// Package baseline implements the systems the paper compares HUGE against —
// SEED (bushy hash join, pushing), BiGJoin (wco join, pushing), BENU (DFS
// backtracking over an external key-value store) and RADS (star-expand-and-
// verify, pulling) — plus a single-threaded ground-truth enumerator used as
// the correctness oracle for every engine configuration.
package baseline

import (
	"repro/internal/dataflow"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/query"
)

// GroundTruthCount enumerates matches of q in g by sequential backtracking
// (Ullmann-style [82]) honouring q's symmetry-breaking orders, and returns
// the count. It is deliberately simple — the oracle every distributed
// engine must agree with.
func GroundTruthCount(g *graph.Graph, q *query.Query) uint64 {
	var count uint64
	GroundTruthEnumerate(g, q, func([]graph.VertexID) bool {
		count++
		return true
	})
	return count
}

// GroundTruthPinnedCount counts the matches of q in g that use at least
// one edge from the pinned set — the oracle for delta-mode enumeration:
// applied to the inserted set on the new snapshot it yields the new
// matches, applied to the deleted set on the old snapshot the vanished
// ones, and full(t+1) = full(t) + new − vanished.
func GroundTruthPinnedCount(g *graph.Graph, q *query.Query, pinned *graph.EdgeSet) uint64 {
	var count uint64
	GroundTruthEnumerate(g, q, func(m []graph.VertexID) bool {
		for _, e := range q.Edges() {
			if pinned.Has(m[e[0]], m[e[1]]) {
				count++
				break
			}
		}
		return true
	})
	return count
}

// groupKeyOf maps one match to its group key under spec, mirroring the
// engine's key derivation (including the implicit-label-0 convention on
// unlabelled graphs).
func groupKeyOf(g *graph.Graph, spec dataflow.GroupSpec, m []graph.VertexID) uint64 {
	switch spec.Kind {
	case dataflow.GroupByVertex:
		return uint64(m[spec.QV])
	case dataflow.GroupByVertexLabel:
		return uint64(g.Label(m[spec.QV]))
	default: // GroupByEdgeLabel
		return uint64(g.EdgeLabel(m[spec.QA], m[spec.QB]))
	}
}

// GroundTruthGroupedCount enumerates q's matches and tallies them per group
// key — the oracle for engine-side GROUP BY. Keys follow the engine's
// derivation exactly, evaluated on the canonical symmetry-broken
// assignment.
func GroundTruthGroupedCount(g *graph.Graph, q *query.Query, spec dataflow.GroupSpec) map[uint64]uint64 {
	counts := map[uint64]uint64{}
	GroundTruthEnumerate(g, q, func(m []graph.VertexID) bool {
		counts[groupKeyOf(g, spec, m)]++
		return true
	})
	return counts
}

// GroundTruthPinnedGroupedCount tallies per group only the matches that use
// at least one pinned edge — the oracle for grouped delta-mode runs:
// applied to the inserted set on the new snapshot it yields the per-group
// new matches, applied to the deleted set on the old snapshot the per-group
// vanished ones, and full(t+1)[k] = full(t)[k] + new[k] − vanished[k] for
// every key k.
func GroundTruthPinnedGroupedCount(g *graph.Graph, q *query.Query, pinned *graph.EdgeSet, spec dataflow.GroupSpec) map[uint64]uint64 {
	counts := map[uint64]uint64{}
	GroundTruthEnumerate(g, q, func(m []graph.VertexID) bool {
		for _, e := range q.Edges() {
			if pinned.Has(m[e[0]], m[e[1]]) {
				counts[groupKeyOf(g, spec, m)]++
				break
			}
		}
		return true
	})
	return counts
}

// GroundTruthEnumerate calls fn for every match (indexed by query vertex);
// fn returning false stops the enumeration. The match slice is reused
// across calls. Vertex- and edge-label constraints are honoured — the
// oracle cross-checks labelled configurations exactly like unlabelled
// ones — and the first matched vertex seeds from the graph's per-label
// index when constrained.
func GroundTruthEnumerate(g *graph.Graph, q *query.Query, fn func(match []graph.VertexID) bool) {
	order := plan.MatchingOrder(q)
	n := q.NumVertices()
	assign := make([]graph.VertexID, n)
	used := make(map[graph.VertexID]bool, n)
	pos := make([]int, n) // pos[v] = position of query vertex v in order
	for i, v := range order {
		pos[v] = i
	}
	// One intersection scratch per depth: candidate slices alias scratch
	// buffers and must survive the deeper recursive calls.
	scratches := make([]graph.IntersectScratch, n)
	stopped := false

	var rec func(depth int)
	rec = func(depth int) {
		if stopped {
			return
		}
		if depth == n {
			if !fn(assign) {
				stopped = true
			}
			return
		}
		v := order[depth]
		// Candidates: intersection of neighbours of matched query-neighbours.
		var lists [][]graph.VertexID
		for _, u := range q.Adj(v) {
			if pos[u] < depth {
				lists = append(lists, g.Neighbors(assign[u]))
			}
		}
		var cands []graph.VertexID
		if len(lists) == 0 {
			// Only the first vertex in a connected order has no matched
			// neighbour; seed it from the per-label index when constrained.
			if l := q.Label(v); l >= 0 && g.Labeled() {
				cands = g.VerticesWithLabel(graph.LabelID(l))
			} else {
				for c := 0; c < g.NumVertices(); c++ {
					cands = append(cands, graph.VertexID(c))
				}
			}
		} else {
			cands = graph.IntersectMany(lists, &scratches[depth])
		}
		for _, c := range cands {
			if used[c] || !labelOK(g, q, v, c) || !edgeLabelsOKAssign(g, q, v, c, assign, pos, depth) {
				continue
			}
			okOrder := true
			for _, o := range q.Orders() {
				switch {
				case o.A == v && pos[o.B] < depth:
					okOrder = assign[o.B] > c
				case o.B == v && pos[o.A] < depth:
					okOrder = assign[o.A] < c
				default:
					continue
				}
				if !okOrder {
					break
				}
			}
			if !okOrder {
				continue
			}
			assign[v] = c
			used[c] = true
			rec(depth + 1)
			delete(used, c)
			if stopped {
				return
			}
		}
	}
	rec(0)
}
