package baseline

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/query"
)

// SEEDConfig parameterises the SEED baseline (Lai et al. [46]): a bushy
// tree of distributed hash joins over star units, scheduled BFS with full
// materialisation and pushing shuffles of both join inputs.
type SEEDConfig struct {
	NumMachines    int
	MemLimitTuples int64
	// Card drives SEED's own bushy-plan optimiser; nil uses a unit
	// estimator (plan shape only).
	Card plan.CardFunc
	// Comm models the network cost of shuffles.
	Comm CommCost
}

// RunSEED enumerates q on g with SEED's plan and execution model.
func RunSEED(g *graph.Graph, q *query.Query, cfg SEEDConfig, m *metrics.Metrics) (uint64, error) {
	if cfg.NumMachines < 1 {
		cfg.NumMachines = 1
	}
	if cfg.Card == nil {
		cfg.Card = func(*query.Query, uint32) float64 { return 1 }
	}
	p := plan.SEEDPlan(q, cfg.Card)
	guard := &memGuard{m: m, limit: cfg.MemLimitTuples}
	part := graph.NewPartitioner(cfg.NumMachines)
	root, err := seedEval(g, q, part, p.Root, guard, m, cfg.Comm)
	if err != nil {
		return 0, err
	}
	n := uint64(root.totalRows())
	guard.m.AddLiveTuples(-root.totalRows())
	m.Results.Add(n)
	return n, nil
}

// seedEval materialises the relation of a join-tree node.
func seedEval(g *graph.Graph, q *query.Query, part graph.Partitioner, n *plan.Node,
	guard *memGuard, m *metrics.Metrics, comm CommCost) (*rel, error) {
	if n.IsLeaf() {
		return seedStar(g, q, part, n.Edges, guard)
	}
	left, err := seedEval(g, q, part, n.Left, guard, m, comm)
	if err != nil {
		return nil, err
	}
	right, err := seedEval(g, q, part, n.Right, guard, m, comm)
	if err != nil {
		return nil, err
	}
	// Join keys: shared query vertices.
	var keyQVs []int
	for _, lv := range left.layout {
		for _, rv := range right.layout {
			if lv == rv {
				keyQVs = append(keyQVs, lv)
			}
		}
	}
	sort.Ints(keyQVs)
	lk := make([]int, len(keyQVs))
	rk := make([]int, len(keyQVs))
	for i, v := range keyQVs {
		lk[i] = left.slotOf(v)
		rk[i] = right.slotOf(v)
	}
	k := part.NumMachines()
	ls := shuffle(left, lk, k, m, comm)
	rs := shuffle(right, rk, k, m, comm)
	guard.m.AddLiveTuples(-left.totalRows() - right.totalRows())
	if err := guard.add(ls.totalRows() + rs.totalRows()); err != nil {
		return nil, err
	}

	outLayout := append([]int(nil), left.layout...)
	var copySlots []int
	for s, rv := range right.layout {
		shared := false
		for _, kv := range keyQVs {
			if rv == kv {
				shared = true
			}
		}
		if !shared {
			copySlots = append(copySlots, s)
			outLayout = append(outLayout, rv)
		}
	}
	out := newRel(k, outLayout)
	var produced int64
	for mi := 0; mi < k; mi++ {
		// Local hash join: build on the right, probe with the left.
		build := map[string][][]graph.VertexID{}
		data := rs.rows[mi]
		for i := 0; i+rs.width <= len(data); i += rs.width {
			row := data[i : i+rs.width]
			build[encodeKey(row, rk)] = append(build[encodeKey(row, rk)], row)
		}
		ldata := ls.rows[mi]
		outRow := make([]graph.VertexID, len(outLayout))
		for i := 0; i+ls.width <= len(ldata); i += ls.width {
			lrow := ldata[i : i+ls.width]
			for _, rrow := range build[encodeKey(lrow, lk)] {
				w := copy(outRow, lrow)
				for _, s := range copySlots {
					outRow[w] = rrow[s]
					w++
				}
				if !seedJoinValid(q, left, right, outLayout, outRow) {
					continue
				}
				out.rows[mi] = append(out.rows[mi], outRow...)
				produced++
				if guard.limit > 0 && guard.m.LiveTuples()+produced > guard.limit {
					return nil, ErrOOM
				}
			}
		}
	}
	guard.m.AddLiveTuples(-ls.totalRows() - rs.totalRows())
	if err := guard.add(produced); err != nil {
		return nil, err
	}
	return out, nil
}

// seedJoinValid enforces injectivity across sides and symmetry-breaking
// orders spanning the two sides.
func seedJoinValid(q *query.Query, left, right *rel, outLayout []int, out []graph.VertexID) bool {
	inLeft := func(qv int) bool {
		for _, v := range left.layout {
			if v == qv {
				return true
			}
		}
		return false
	}
	inRight := func(qv int) bool {
		for _, v := range right.layout {
			if v == qv {
				return true
			}
		}
		return false
	}
	// Distinctness between left-only and right-only assignments.
	for i, qa := range outLayout {
		for j, qb := range outLayout {
			if i >= j {
				continue
			}
			li, ri := inLeft(qa), inRight(qa)
			lj, rj := inLeft(qb), inRight(qb)
			spans := (li && !lj && rj && !ri) || (lj && !li && ri && !rj)
			if spans && out[i] == out[j] {
				return false
			}
		}
	}
	for _, o := range q.Orders() {
		var sa, sb = -1, -1
		for s, qv := range outLayout {
			if qv == o.A {
				sa = s
			}
			if qv == o.B {
				sb = s
			}
		}
		if sa < 0 || sb < 0 {
			continue
		}
		bothLeft := inLeft(o.A) && inLeft(o.B)
		bothRight := inRight(o.A) && inRight(o.B)
		if bothLeft || bothRight {
			continue // already enforced when the side was materialised
		}
		if out[sa] >= out[sb] {
			return false
		}
	}
	return true
}

func encodeKey(row []graph.VertexID, slots []int) string {
	b := make([]byte, 0, len(slots)*4)
	for _, s := range slots {
		v := row[s]
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// seedStar materialises a star join unit: every ordered assignment of the
// leaves from the root's neighbourhood, respecting orders among the star's
// vertices. Output is partitioned by the root's owner.
func seedStar(g *graph.Graph, q *query.Query, part graph.Partitioner, em uint32, guard *memGuard) (*rel, error) {
	root, leaves, ok := q.StarRoot(em)
	if !ok {
		panic("baseline: SEED unit is not a star")
	}
	layout := append([]int{root}, leaves...)
	out := newRel(part.NumMachines(), layout)
	row := make([]graph.VertexID, len(layout))
	var produced int64
	var rec func(u graph.VertexID, depth int, dest int) error
	rec = func(u graph.VertexID, depth int, dest int) error {
		if depth == len(layout) {
			out.rows[dest] = append(out.rows[dest], row...)
			produced++
			if guard.limit > 0 && guard.m.LiveTuples()+produced > guard.limit {
				return ErrOOM
			}
			return nil
		}
		v := layout[depth]
		for _, c := range g.Neighbors(u) {
			if containsVal(row[:depth], c) || !labelOK(g, q, v, c) {
				continue
			}
			if !edgeLabelsOK(g, q, layout[:depth], row[:depth], v, c) {
				continue
			}
			if !checkOrderWith(q, layout[:depth], row[:depth], v, c) {
				continue
			}
			row[depth] = c
			if err := rec(u, depth+1, dest); err != nil {
				return err
			}
		}
		return nil
	}
	for u := 0; u < g.NumVertices(); u++ {
		uu := graph.VertexID(u)
		if !labelOK(g, q, root, uu) || !checkOrderWith(q, nil, nil, root, uu) {
			continue
		}
		row[0] = uu
		if err := rec(uu, 1, part.Owner(uu)); err != nil {
			return nil, err
		}
	}
	if err := guard.add(produced); err != nil {
		return nil, err
	}
	return out, nil
}
