package baseline

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/query"
)

func tinyGraph() *graph.Graph { return gen.PowerLaw(150, 3, 17) }

func TestGroundTruthKnownCounts(t *testing.T) {
	// K4: one 4-clique, 3 squares? No — C4 subgraphs of K4: choose 4
	// vertices (1 way), 3 distinct 4-cycles. Triangles: C(4,3)=4.
	k4 := graph.FromEdges([][2]graph.VertexID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	cases := []struct {
		q    *query.Query
		want uint64
	}{
		{query.Triangle(), 4},
		{query.Q1(), 3},
		{query.Q3(), 1},
	}
	for _, c := range cases {
		if got := GroundTruthCount(k4, c.q); got != c.want {
			t.Errorf("%s on K4: %d, want %d", c.q.Name(), got, c.want)
		}
	}
}

func TestGroundTruthSymmetryFactor(t *testing.T) {
	// Count with symmetry breaking x |Aut| must equal the count of ordered
	// embeddings (no symmetry breaking).
	g := gen.PowerLaw(80, 3, 2)
	for _, q := range []*query.Query{query.Triangle(), query.Q1(), query.Q2()} {
		withSB := GroundTruthCount(g, q)
		free := query.New(q.Name()+"-free", q.Edges())
		free.SetOrders(nil)
		noSB := GroundTruthCount(g, free)
		aut := uint64(query.AutomorphismCount(q))
		if withSB*aut != noSB {
			t.Errorf("%s: %d * |Aut|=%d != %d", q.Name(), withSB, aut, noSB)
		}
	}
}

func TestGroundTruthEnumerateStops(t *testing.T) {
	g := gen.PowerLaw(100, 4, 3)
	calls := 0
	GroundTruthEnumerate(g, query.Triangle(), func([]graph.VertexID) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("enumeration did not stop: %d calls", calls)
	}
}

func TestBENUMatchesGroundTruth(t *testing.T) {
	g := tinyGraph()
	for _, q := range []*query.Query{query.Triangle(), query.Q1(), query.Q2(), query.Q3()} {
		want := GroundTruthCount(g, q)
		m := &metrics.Metrics{}
		got := RunBENU(g, q, BENUConfig{NumMachines: 3, Workers: 2, CacheBytes: 1 << 14}, m)
		if got != want {
			t.Errorf("BENU %s: %d, want %d", q.Name(), got, want)
		}
		if m.RPCCalls.Load() == 0 {
			t.Errorf("BENU %s: no store pulls recorded", q.Name())
		}
	}
}

func TestBiGJoinMatchesGroundTruth(t *testing.T) {
	g := tinyGraph()
	for _, q := range []*query.Query{query.Triangle(), query.Q1(), query.Q2(), query.Q4()} {
		want := GroundTruthCount(g, q)
		m := &metrics.Metrics{}
		got, err := RunBiGJoin(g, q, BiGJoinConfig{NumMachines: 3}, m)
		if err != nil {
			t.Fatalf("BiGJoin %s: %v", q.Name(), err)
		}
		if got != want {
			t.Errorf("BiGJoin %s: %d, want %d", q.Name(), got, want)
		}
		if m.BytesPushed.Load() == 0 {
			t.Errorf("BiGJoin %s: pushed no data", q.Name())
		}
	}
}

func TestBiGJoinBatchingMatches(t *testing.T) {
	g := tinyGraph()
	q := query.Q1()
	want := GroundTruthCount(g, q)
	for _, batch := range []int{0, 7, 100} {
		m := &metrics.Metrics{}
		got, err := RunBiGJoin(g, q, BiGJoinConfig{NumMachines: 2, BatchPivots: batch}, m)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("batch %d: %d, want %d", batch, got, want)
		}
	}
}

func TestBiGJoinOOM(t *testing.T) {
	g := gen.PowerLaw(500, 8, 4)
	m := &metrics.Metrics{}
	_, err := RunBiGJoin(g, query.Q1(), BiGJoinConfig{NumMachines: 2, MemLimitTuples: 100}, m)
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("expected ErrOOM, got %v", err)
	}
}

func TestSEEDMatchesGroundTruth(t *testing.T) {
	g := tinyGraph()
	stats := plan.ComputeStats(g)
	card := plan.MomentEstimator(stats)
	for _, q := range []*query.Query{query.Triangle(), query.Q1(), query.Q2(), query.Q4(), query.Q7()} {
		want := GroundTruthCount(g, q)
		m := &metrics.Metrics{}
		got, err := RunSEED(g, q, SEEDConfig{NumMachines: 3, Card: card}, m)
		if err != nil {
			t.Fatalf("SEED %s: %v", q.Name(), err)
		}
		if got != want {
			t.Errorf("SEED %s: %d, want %d", q.Name(), got, want)
		}
	}
}

func TestSEEDOOM(t *testing.T) {
	g := gen.PowerLaw(500, 8, 4)
	m := &metrics.Metrics{}
	_, err := RunSEED(g, query.Q1(), SEEDConfig{NumMachines: 2, MemLimitTuples: 50}, m)
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("expected ErrOOM, got %v", err)
	}
}

func TestRADSMatchesGroundTruth(t *testing.T) {
	g := tinyGraph()
	for _, q := range []*query.Query{query.Triangle(), query.Q1(), query.Q2(), query.Q4()} {
		want := GroundTruthCount(g, q)
		m := &metrics.Metrics{}
		got, err := RunRADS(g, q, RADSConfig{NumMachines: 3, CacheBytes: 1 << 14}, m)
		if err != nil {
			t.Fatalf("RADS %s: %v", q.Name(), err)
		}
		if got != want {
			t.Errorf("RADS %s: %d, want %d", q.Name(), got, want)
		}
	}
}

func TestRADSRegionGroups(t *testing.T) {
	g := tinyGraph()
	q := query.Q2()
	want := GroundTruthCount(g, q)
	for _, group := range []int{0, 10, 50} {
		m := &metrics.Metrics{}
		got, err := RunRADS(g, q, RADSConfig{NumMachines: 2, RegionGroup: group, CacheBytes: 1 << 14}, m)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("region group %d: %d, want %d", group, got, want)
		}
	}
}

// TestBaselineMemoryProfiles checks the paper's qualitative memory story on
// a skewed graph: BENU (DFS) peaks far below BiGJoin/SEED (BFS).
func TestBaselineMemoryProfiles(t *testing.T) {
	g := gen.PowerLaw(400, 5, 6)
	q := query.Q1()
	mBENU := &metrics.Metrics{}
	RunBENU(g, q, BENUConfig{NumMachines: 2, Workers: 2, CacheBytes: 1 << 16}, mBENU)
	mBig := &metrics.Metrics{}
	if _, err := RunBiGJoin(g, q, BiGJoinConfig{NumMachines: 2}, mBig); err != nil {
		t.Fatal(err)
	}
	if mBig.PeakTuples() == 0 {
		t.Fatal("BiGJoin recorded no peak memory")
	}
	// BENU materialises nothing.
	if mBENU.PeakTuples() > mBig.PeakTuples()/2 {
		t.Errorf("BENU peak %d not well below BiGJoin peak %d", mBENU.PeakTuples(), mBig.PeakTuples())
	}
}

// TestBaselineCommProfiles: pulling baselines (BENU) move far less data
// than pushing ones (BiGJoin) — Table 1's C column shape.
func TestBaselineCommProfiles(t *testing.T) {
	g := gen.PowerLaw(400, 5, 6)
	q := query.Q1()
	mBENU := &metrics.Metrics{}
	RunBENU(g, q, BENUConfig{NumMachines: 4, Workers: 1, CacheBytes: 1 << 20}, mBENU)
	mBig := &metrics.Metrics{}
	if _, err := RunBiGJoin(g, q, BiGJoinConfig{NumMachines: 4}, mBig); err != nil {
		t.Fatal(err)
	}
	if mBENU.TotalBytes() >= mBig.TotalBytes() {
		t.Errorf("BENU moved %d bytes, BiGJoin %d — pulling should be smaller",
			mBENU.TotalBytes(), mBig.TotalBytes())
	}
}
