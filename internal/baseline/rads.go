package baseline

import (
	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/store"
)

// RADSConfig parameterises the RADS baseline (Ren et al. [66]):
// star-expand-and-verify with pulling communication, left-deep star plans,
// and the region-group heuristic — initial pivot roots are processed in
// fixed-size groups to cap (but not bound) memory.
type RADSConfig struct {
	NumMachines    int
	RegionGroup    int // pivot roots per group; 0 = one group with everything
	CacheBytes     uint64
	MemLimitTuples int64
	Store          *store.SimKV // pull source; nil builds a zero-latency one
}

// RunRADS enumerates q on g with RADS's plan and execution model.
func RunRADS(g *graph.Graph, q *query.Query, cfg RADSConfig, m *metrics.Metrics) (uint64, error) {
	if cfg.NumMachines < 1 {
		cfg.NumMachines = 1
	}
	if cfg.Store == nil {
		cfg.Store = store.NewSimKV(g, m)
	}
	p := plan.RADSPlan(q)
	units := radsUnits(p.Root)
	guard := &memGuard{m: m, limit: cfg.MemLimitTuples}
	part := graph.NewPartitioner(cfg.NumMachines)

	// The first unit's root vertices are the pivots; region groups split
	// them so each round's expansion is (heuristically) smaller.
	root0, _, _ := q.StarRoot(units[0])
	_ = root0
	pivots := make([]graph.VertexID, 0, g.NumVertices())
	for u := 0; u < g.NumVertices(); u++ {
		pivots = append(pivots, graph.VertexID(u))
	}
	groupSize := cfg.RegionGroup
	if groupSize <= 0 {
		groupSize = len(pivots)
	}

	var total uint64
	for lo := 0; lo < len(pivots); lo += groupSize {
		hi := lo + groupSize
		if hi > len(pivots) {
			hi = len(pivots)
		}
		n, err := radsGroup(g, q, part, units, pivots[lo:hi], cfg, guard, m)
		if err != nil {
			return 0, err
		}
		total += n
	}
	m.Results.Add(total)
	return total, nil
}

func radsUnits(n *plan.Node) []uint32 {
	if n.IsLeaf() {
		return []uint32{n.Edges}
	}
	return append(radsUnits(n.Left), n.Right.Edges)
}

func radsGroup(g *graph.Graph, q *query.Query, part graph.Partitioner, units []uint32,
	pivots []graph.VertexID, cfg RADSConfig, guard *memGuard, m *metrics.Metrics) (uint64, error) {
	k := part.NumMachines()
	// Per-machine locked LRU caches for pulled adjacency.
	caches := make([]cache.Cache, k)
	for i := range caches {
		caches[i] = cache.New(cache.CncrLRU, cfg.CacheBytes)
	}
	pull := func(mi int, v graph.VertexID) []graph.VertexID {
		if part.Owner(v) == mi {
			return g.Neighbors(v)
		}
		if nb, ok := caches[mi].Get(v); ok {
			m.CacheHits.Add(1)
			return nb
		}
		m.CacheMisses.Add(1)
		nb := cfg.Store.Get(v)
		caches[mi].Insert(v, nb)
		return nb
	}

	// Materialise the first star from the group's pivots.
	root, leaves, _ := q.StarRoot(units[0])
	layout := append([]int{root}, leaves...)
	cur := newRel(k, layout)
	row := make([]graph.VertexID, len(layout))
	var produced int64
	var expand func(nbrs []graph.VertexID, depth, dest int) error
	expand = func(nbrs []graph.VertexID, depth, dest int) error {
		if depth == len(layout) {
			cur.rows[dest] = append(cur.rows[dest], row...)
			produced++
			if guard.limit > 0 && guard.m.LiveTuples()+produced > guard.limit {
				return ErrOOM
			}
			return nil
		}
		v := layout[depth]
		for _, c := range nbrs {
			if containsVal(row[:depth], c) || !labelOK(g, q, v, c) ||
				!edgeLabelsOK(g, q, layout[:depth], row[:depth], v, c) ||
				!checkOrderWith(q, layout[:depth], row[:depth], v, c) {
				continue
			}
			row[depth] = c
			if err := expand(nbrs, depth+1, dest); err != nil {
				return err
			}
		}
		return nil
	}
	for _, u := range pivots {
		if !labelOK(g, q, root, u) || !checkOrderWith(q, nil, nil, root, u) {
			continue
		}
		row[0] = u
		dest := part.Owner(u)
		if err := expand(g.Neighbors(u), 1, dest); err != nil {
			return 0, err
		}
	}
	if err := guard.add(produced); err != nil {
		return 0, err
	}

	// Expand-and-verify round per remaining star unit (BFS, full
	// materialisation — RADS's plans are why it underperforms, Exp-1).
	for _, em := range units[1:] {
		r, ls, _ := q.StarRoot(em)
		// Orient so the root is already matched (guaranteed by RADSPlan).
		if !inLayout(cur.layout, r) {
			if len(ls) == 1 && inLayout(cur.layout, ls[0]) {
				r, ls = ls[0], []int{r}
			} else {
				panic("baseline: RADS star root not matched")
			}
		}
		rootSlot := cur.slotOf(r)
		var v1, v2 []int
		for _, l := range ls {
			if inLayout(cur.layout, l) {
				v1 = append(v1, l)
			} else {
				v2 = append(v2, l)
			}
		}
		nextLayout := append(append([]int(nil), cur.layout...), v2...)
		next := newRel(k, nextLayout)
		var prod int64
		out := make([]graph.VertexID, len(nextLayout))
		for mi := 0; mi < k; mi++ {
			data := cur.rows[mi]
		rows:
			for i := 0; i+cur.width <= len(data); i += cur.width {
				prow := data[i : i+cur.width]
				nbrs := pull(mi, prow[rootSlot])
				// Verify edges to already-matched leaves (label included).
				for _, l := range v1 {
					lv := prow[cur.slotOf(l)]
					if !graph.ContainsSorted(nbrs, lv) {
						continue rows
					}
					if el := q.EdgeLabelBetween(r, l); el >= 0 && int(g.EdgeLabel(prow[rootSlot], lv)) != el {
						continue rows
					}
				}
				copy(out, prow)
				var rec func(depth int) error
				rec = func(depth int) error {
					if depth == len(nextLayout) {
						next.rows[mi] = append(next.rows[mi], out...)
						prod++
						if guard.limit > 0 && guard.m.LiveTuples()+prod > guard.limit {
							return ErrOOM
						}
						return nil
					}
					v := nextLayout[depth]
					for _, c := range nbrs {
						if containsVal(out[:depth], c) || !labelOK(g, q, v, c) ||
							!edgeLabelsOK(g, q, nextLayout[:depth], out[:depth], v, c) ||
							!checkOrderWith(q, nextLayout[:depth], out[:depth], v, c) {
							continue
						}
						out[depth] = c
						if err := rec(depth + 1); err != nil {
							return err
						}
					}
					return nil
				}
				if err := rec(cur.width); err != nil {
					return 0, err
				}
			}
		}
		guard.m.AddLiveTuples(-cur.totalRows())
		if err := guard.add(prod); err != nil {
			return 0, err
		}
		cur = next
	}
	n := uint64(cur.totalRows())
	guard.m.AddLiveTuples(-cur.totalRows())
	return n, nil
}

func inLayout(layout []int, qv int) bool {
	for _, v := range layout {
		if v == qv {
			return true
		}
	}
	return false
}
