package baseline

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Every baseline executor must honour label constraints, so the oracle can
// cross-check labelled configurations against all of them.
func TestBaselinesHonourLabels(t *testing.T) {
	lg := gen.ZipfLabels(gen.PowerLaw(400, 3, 5), 6, 1.6, 3)
	queries := []*query.Query{
		query.Triangle().WithVertexLabels([]int{0, 0, 0}),
		query.Triangle().WithVertexLabels([]int{1, query.AnyLabel, 1}),
		query.Q1().WithVertexLabels([]int{0, 1, 0, query.AnyLabel}),
	}
	for _, q := range queries {
		want := GroundTruthCount(lg, q)
		m := func() *metrics.Metrics { return &metrics.Metrics{} }
		if got := RunBENU(lg, q, BENUConfig{NumMachines: 2, Workers: 2}, m()); got != want {
			t.Errorf("BENU %s: %d, want %d", q, got, want)
		}
		if got, err := RunBiGJoin(lg, q, BiGJoinConfig{NumMachines: 2}, m()); err != nil || got != want {
			t.Errorf("BiGJoin %s: %d (%v), want %d", q, got, err, want)
		}
		if got, err := RunRADS(lg, q, RADSConfig{NumMachines: 2}, m()); err != nil || got != want {
			t.Errorf("RADS %s: %d (%v), want %d", q, got, err, want)
		}
		if got, err := RunSEED(lg, q, SEEDConfig{NumMachines: 2}, m()); err != nil || got != want {
			t.Errorf("SEED %s: %d (%v), want %d", q, got, err, want)
		}
	}
	// A label absent from the graph matches nothing, also on an unlabelled
	// graph (implicit uniform label 0).
	none := query.Triangle().WithVertexLabels([]int{5, query.AnyLabel, 5})
	plain := gen.PowerLaw(200, 3, 5)
	if got := GroundTruthCount(plain, none); got != 0 {
		t.Errorf("label-5 triangle on unlabelled graph: %d, want 0", got)
	}
	if got := GroundTruthCount(plain, query.Triangle().WithVertexLabels([]int{0, 0, 0})); got != GroundTruthCount(plain, query.Triangle()) {
		t.Error("label-0 triangle on unlabelled graph differs from unlabelled count")
	}
}
