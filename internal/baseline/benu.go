package baseline

import (
	"sync"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/store"
)

// BENUConfig parameterises the BENU baseline (Wang et al. [84]): each
// machine embarrassingly parallelises a sequential DFS backtracking program
// over its share of pivot vertices, pulling every adjacency list it needs
// from the external key-value store through a local bounded LRU cache.
type BENUConfig struct {
	NumMachines int
	Workers     int
	CacheBytes  uint64 // per worker task; BENU shares a traditional cache per machine
	Store       *store.SimKV
}

// RunBENU executes q over g and returns the match count. DFS keeps memory
// tiny (one partial match per worker) but, as the paper observes, pays the
// store's per-pull overhead and undersubscribes the CPU.
func RunBENU(g *graph.Graph, q *query.Query, cfg BENUConfig, m *metrics.Metrics) uint64 {
	if cfg.NumMachines < 1 {
		cfg.NumMachines = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Store == nil {
		cfg.Store = store.NewSimKV(g, m)
	}
	order := plan.MatchingOrder(q)
	pos := make([]int, q.NumVertices())
	for i, v := range order {
		pos[v] = i
	}
	part := graph.NewPartitioner(cfg.NumMachines)

	var total sync.WaitGroup
	counts := make([]uint64, cfg.NumMachines*cfg.Workers)
	for mi := 0; mi < cfg.NumMachines; mi++ {
		// One shared locked LRU per machine, as BENU uses (Section 4.4:
		// "a traditional cache structure shared by all workers").
		c := cache.New(cache.CncrLRU, cfg.CacheBytes)
		for w := 0; w < cfg.Workers; w++ {
			total.Add(1)
			go func(mi, w int) {
				defer total.Done()
				b := &benuWorker{
					q: q, g: g, order: order, pos: pos, store: cfg.Store, cache: c, metrics: m,
					assign: make([]graph.VertexID, q.NumVertices()),
					used:   map[graph.VertexID]bool{},
				}
				// Pivot vertices: machine mi owns v with Owner(v)==mi; its
				// workers stripe them.
				stripe := 0
				for v := 0; v < g.NumVertices(); v++ {
					if part.Owner(graph.VertexID(v)) != mi {
						continue
					}
					if stripe%cfg.Workers == w && labelOK(g, q, order[0], graph.VertexID(v)) {
						b.matchFrom(graph.VertexID(v))
					}
					stripe++
				}
				counts[mi*cfg.Workers+w] = b.count
			}(mi, w)
		}
	}
	total.Wait()
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	m.Results.Add(sum)
	return sum
}

type benuWorker struct {
	q       *query.Query
	g       *graph.Graph // label metadata only; adjacency goes through the store
	order   []int
	pos     []int
	store   *store.SimKV
	cache   cache.Cache
	metrics *metrics.Metrics
	assign  []graph.VertexID
	used    map[graph.VertexID]bool
	scratch []graph.IntersectScratch
	count   uint64
}

func (b *benuWorker) nbrs(v graph.VertexID) []graph.VertexID {
	if nb, ok := b.cache.Get(v); ok {
		b.metrics.CacheHits.Add(1)
		return nb
	}
	b.metrics.CacheMisses.Add(1)
	nb := b.store.Get(v)
	b.cache.Insert(v, nb)
	return nb
}

func (b *benuWorker) matchFrom(pivot graph.VertexID) {
	b.assign[b.order[0]] = pivot
	b.used[pivot] = true
	if b.scratch == nil {
		b.scratch = make([]graph.IntersectScratch, b.q.NumVertices())
	}
	b.rec(1)
	delete(b.used, pivot)
}

func (b *benuWorker) rec(depth int) {
	if depth == b.q.NumVertices() {
		b.count++
		return
	}
	v := b.order[depth]
	var lists [][]graph.VertexID
	for _, u := range b.q.Adj(v) {
		if b.pos[u] < depth {
			lists = append(lists, b.nbrs(b.assign[u]))
		}
	}
	cands := graph.IntersectMany(lists, &b.scratch[depth])
	// Copy: deeper pulls may recycle the scratch (and evict cache entries).
	own := append([]graph.VertexID(nil), cands...)
	for _, c := range own {
		if b.used[c] || !labelOK(b.g, b.q, v, c) || !edgeLabelsOKAssign(b.g, b.q, v, c, b.assign, b.pos, depth) {
			continue
		}
		ok := true
		for _, o := range b.q.Orders() {
			switch {
			case o.A == v && b.pos[o.B] < depth:
				ok = b.assign[o.B] > c
			case o.B == v && b.pos[o.A] < depth:
				ok = b.assign[o.A] < c
			default:
				continue
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		b.assign[v] = c
		b.used[c] = true
		b.rec(depth + 1)
		delete(b.used, c)
	}
}
